// Command dmpsim runs one benchmark (or an assembly file) on one machine
// configuration and prints the run statistics.
//
// Usage:
//
//	dmpsim -bench mcf -mode dmp -scale 3
//	dmpsim -asm prog.s -mode baseline
//	dmpsim -bench parser -mode dmp -conf perfect -mcfm -eexit -mdb
//	dmpsim -bench mcf -mode enhanced -sample -sample-manifest mcf.json
//
// Modes: baseline, perfect, dmp, dhp, dualpath, enhanced (= dmp with all
// Section 2.7 enhancements).
//
// -cfm-source selects where DMP finds merge points: annotated (compiler
// annotations, the default), dynamic (the runtime merge-point predictor
// of internal/merge — no annotations needed), or hybrid (annotation
// first, predictor for unannotated branches). -merge-table sizes the
// predictor's reconvergence table; -merge-stats appends a predictor
// summary line to the output.
//
// Sampled simulation (see internal/sample): -sample switches the run to
// SMARTS-style sampling — an exactly measured cold-start prefix, one
// continuous functional-warming pass, and short detailed intervals whose
// measurements extrapolate the full run with a 95% confidence interval.
// -sample-period/-sample-interval/-sample-warmup override the default
// parameters (and require -sample); -warm-mode caches restricts the
// continuous warming pass to the cache hierarchy (predictors retrain per
// interval via -sample-warmup — cheaper warming, pair it with a nonzero
// warmup); -sample-manifest records the per-interval accounting as JSON
// for dmpobs -manifest to validate. The summary includes a host time
// breakdown (prefix/warming/snapshot/detailed/extrapolate).
//
// Observability (see internal/obs): -pipetrace writes a per-uop
// pipeline trace (Chrome trace_event JSON for Perfetto when the file
// ends in .json, text otherwise), -events writes the dynamic
// predication episode timeline as JSONL (summarize with dmpobs),
// -interval writes an interval Stats CSV every N cycles. A progress
// heartbeat prints on stderr every few seconds unless -q.
// -cpuprofile/-memprofile/-trace profile the simulator itself.
//
// -telemetry attaches the host-side telemetry layer (internal/telemetry);
// -telemetry-out DIR (implies -telemetry) records spans.json (host spans:
// run, and for -sample the prefix/warm/extrapolate stages plus every
// snapshot and interval job — loadable into one Perfetto timeline with a
// -pipetrace), events.jsonl and metrics.json/.prom. Validate with dmpobs
// -telemetry DIR. Attached telemetry never changes the printed Stats.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dmp/internal/core"
	"dmp/internal/emu"
	"dmp/internal/exp"
	"dmp/internal/lint"
	"dmp/internal/obs"
	"dmp/internal/profile"
	"dmp/internal/prog"
	"dmp/internal/sample"
	"dmp/internal/telemetry"
	"dmp/internal/workload"
)

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark name (see -list)")
		asm      = flag.String("asm", "", "assembly file to run instead of a benchmark")
		mode     = flag.String("mode", "baseline", "baseline|perfect|dmp|dhp|dualpath|enhanced")
		conf     = flag.String("conf", "jrs", "confidence estimator: jrs|perfect|always-low|never-low")
		predName = flag.String("pred", "perceptron", "predictor: perceptron|gshare|bimodal|hybrid")
		scale    = flag.Int("scale", 3, "workload scale factor")
		rob      = flag.Int("rob", 512, "reorder buffer entries")
		depth    = flag.Int("depth", 30, "pipeline depth")
		maxInsts = flag.Uint64("max-insts", 0, "stop after N retired instructions (0 = run to halt)")
		mcfm     = flag.Bool("mcfm", false, "enable multiple CFM points (2.7.1)")
		eexit    = flag.Bool("eexit", false, "enable early exit (2.7.2)")
		mdb      = flag.Bool("mdb", false, "enable multiple diverge branches (2.7.3)")
		loops    = flag.Bool("loops", false, "enable diverge loop branches (2.7.4)")
		cfmSrc   = flag.String("cfm-source", "annotated", "CFM point source: annotated|dynamic|hybrid (dynamic/hybrid use the runtime merge-point predictor)")
		mergeTbl = flag.Int("merge-table", 0, "merge-point predictor table entries (0 = default; needs -cfm-source dynamic|hybrid)")
		mergeSt  = flag.Bool("merge-stats", false, "print a merge-point predictor summary line")
		nocheck  = flag.Bool("nocheck", false, "disable the golden-model retirement checker")

		doSample    = flag.Bool("sample", false, "sampled simulation: fast-forward + warmed detailed intervals instead of an exact run")
		samplePer   = flag.Uint64("sample-period", 0, "instructions per sampling period (0 = default; needs -sample)")
		sampleIvl   = flag.Uint64("sample-interval", 0, "retired instructions measured per detailed interval (0 = default; needs -sample)")
		sampleWarm  = flag.Uint64("sample-warmup", 0, "extra per-interval functional warmup instructions (needs -sample)")
		warmMode    = flag.String("warm-mode", "", "functional warming mode: full (default) or caches — caches-only warming retrains predictors per interval via -sample-warmup (needs -sample)")
		sampleManif = flag.String("sample-manifest", "", "write the sampled run's interval manifest (JSON) to this file (needs -sample)")

		doLint = flag.Bool("lint", false, "statically check the program and annotations, print findings, and exit")
		list   = flag.Bool("list", false, "list benchmarks and exit")

		pipetrace   = flag.String("pipetrace", "", "write a per-uop pipetrace to this file (.json = Chrome trace for Perfetto, else text)")
		events      = flag.String("events", "", "write the dynamic-predication episode timeline (JSONL) to this file")
		interval    = flag.Uint64("interval", 0, "sample Stats deltas every N cycles into an interval CSV")
		intervalOut = flag.String("interval-out", "", "interval CSV destination (default stdout)")
		quiet       = flag.Bool("q", false, "suppress the stderr progress heartbeat")
		cpuprofile  = flag.String("cpuprofile", "", "write a host CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write a host heap profile to this file at exit")
		exectrace   = flag.String("trace", "", "write a host runtime execution trace to this file")

		telemetryOn  = flag.Bool("telemetry", false, "attach host-side telemetry (metrics, spans, progress feed)")
		telemetryOut = flag.String("telemetry-out", "", "record telemetry artifacts (spans.json, events.jsonl, metrics.json/.prom) in this directory; implies -telemetry")
	)
	flag.Parse()

	if *list {
		for _, w := range workload.All() {
			fmt.Printf("%-8s %s\n", w.Name, w.Desc)
		}
		return
	}

	cfg := core.DefaultConfig()
	switch *mode {
	case "baseline":
	case "perfect":
		cfg.Mode = core.ModePerfect
	case "dmp":
		cfg.Mode = core.ModeDMP
	case "dhp":
		cfg.Mode = core.ModeDHP
	case "dualpath":
		cfg.Mode = core.ModeDualPath
	case "enhanced":
		cfg = core.EnhancedDMPConfig()
	default:
		fatal("unknown -mode %q", *mode)
	}
	cfg.ConfidenceName = *conf
	cfg.PredictorName = *predName
	cfg.ROBSize = *rob
	cfg.PipelineDepth = *depth
	cfg.MaxInsts = *maxInsts
	cfg.CheckRetirement = !*nocheck
	if *mcfm {
		cfg.MultipleCFM = true
	}
	if *eexit {
		cfg.EarlyExit = true
	}
	if *mdb {
		cfg.MultipleDiverge = true
	}
	if *loops {
		cfg.EnableLoopDiverge = true
	}
	if err := setCFMSource(&cfg, *cfmSrc, *mergeTbl); err != nil {
		fatal("%v", err)
	}
	if err := setSampling(&cfg, *doSample, *samplePer, *sampleIvl, *sampleWarm, *warmMode, *sampleManif); err != nil {
		fatal("%v", err)
	}

	var p *prog.Program
	switch {
	case *asm != "":
		src, err := os.ReadFile(*asm)
		if err != nil {
			fatal("%v", err)
		}
		p, err = prog.Assemble(string(src))
		if err != nil {
			fatal("%v", err)
		}
		if cfg.Mode == core.ModeDMP || cfg.Mode == core.ModeDHP {
			if _, err := profile.Run(p, profile.DefaultOptions()); err != nil {
				fatal("profile: %v", err)
			}
		}
	case *bench != "":
		var err error
		p, err = exp.Annotated(*bench, *scale)
		if err != nil {
			fatal("%v", err)
		}
	default:
		fatal("need -bench or -asm (try -list)")
	}

	if *doLint {
		ds := lint.Check(p, lint.Options{})
		for _, d := range ds {
			fmt.Println(d)
		}
		if ds.HasErrors() {
			fatal("lint: %d error(s)", len(ds.Errors()))
		}
		if len(ds) == 0 {
			fmt.Println("lint: clean")
		} else {
			fmt.Printf("lint: clean (%d warning(s) suppressed)\n", len(ds))
		}
		return
	}

	stopProfiles, err := obs.StartHostProfiles(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fatal("profiling: %v", err)
	}

	// Telemetry attach: one root span for the run; a sampled run hangs
	// its stage spans and interval jobs under it. finishTelemetry closes
	// the set and records the metrics artifacts.
	var tel *telemetry.Set
	var rootSpan *telemetry.Span
	if *telemetryOut != "" {
		*telemetryOn = true
	}
	if *telemetryOn {
		if *telemetryOut != "" {
			tel, err = telemetry.OpenDir(*telemetryOut)
			if err != nil {
				fatal("telemetry: %v", err)
			}
		} else {
			tel = telemetry.New(telemetry.Options{})
		}
		telemetry.Enable(tel)
		rootSpan = tel.Tracer().Begin("dmpsim", "sim")
		tel.Feed().Emit(telemetry.Event{Kind: "run-start", Name: "dmpsim",
			Msg: fmt.Sprintf("%s %s scale %d", benchName(*bench, *asm), *mode, *scale)})
	}
	finishTelemetry := func() {
		if tel == nil {
			return
		}
		tel.Feed().Emit(telemetry.Event{Kind: "run-end"})
		rootSpan.End()
		snap, err := tel.Close()
		telemetry.Enable(nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmpsim: telemetry: %v\n", err)
		}
		if *telemetryOut != "" {
			if err := telemetry.WriteMetricsDir(*telemetryOut, snap); err != nil {
				fmt.Fprintf(os.Stderr, "dmpsim: telemetry: %v\n", err)
			}
		}
	}

	if *doSample {
		if *pipetrace != "" || *events != "" || *interval != 0 {
			fatal("-pipetrace/-events/-interval trace exact runs; they are not available with -sample")
		}
		r, err := sample.Run(p, cfg, sample.Options{Span: rootSpan})
		if err != nil {
			fatal("%v", err)
		}
		if *sampleManif != "" {
			f, err := os.Create(*sampleManif)
			if err != nil {
				fatal("%v", err)
			}
			if err := r.WriteManifest(f); err != nil {
				fatal("manifest: %v", err)
			}
			if err := f.Close(); err != nil {
				fatal("manifest: %v", err)
			}
		}
		printSampled(r)
		printStats(r.Extrapolated)
		if *mergeSt {
			fmt.Print(mergeStatsLine(r.Extrapolated))
		}
		printHostThroughput(p, cfg.MaxInsts, float64(r.TotalInsts)/r.WallSeconds)
		finishTelemetry()
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "dmpsim: profiling: %v\n", err)
		}
		return
	}

	var probes []*core.Probe
	var sinks []interface{ Close() error }
	if *pipetrace != "" {
		f, err := os.Create(*pipetrace)
		if err != nil {
			fatal("%v", err)
		}
		format := obs.FormatText
		if strings.HasSuffix(*pipetrace, ".json") {
			format = obs.FormatChrome
		}
		tr := obs.NewPipetrace(f, format)
		probes = append(probes, tr.Probe())
		sinks = append(sinks, tr, f)
	}
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fatal("%v", err)
		}
		el := obs.NewEpisodeLog(f)
		probes = append(probes, el.Probe())
		sinks = append(sinks, el, f)
	}
	if *interval != 0 {
		var w *os.File
		if *intervalOut != "" {
			f, err := os.Create(*intervalOut)
			if err != nil {
				fatal("%v", err)
			}
			w = f
		} else {
			w = os.Stdout
		}
		iv := obs.NewIntervalSampler(w, *interval)
		probes = append(probes, iv.Probe())
		sinks = append(sinks, iv)
		if w != os.Stdout {
			sinks = append(sinks, w)
		}
	}
	if !*quiet {
		probes = append(probes, obs.NewHeartbeat(os.Stderr, 5*time.Second).Probe())
	}

	m, err := core.New(p, cfg)
	if err != nil {
		fatal("%v", err)
	}
	if len(probes) > 0 {
		m.SetProbe(obs.Tee(probes...))
	}
	runSpan := rootSpan.Child("run", "sim")
	st, runErr := m.Run()
	runSpan.End()
	for _, s := range sinks {
		if err := s.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dmpsim: closing sink: %v\n", err)
		}
	}
	finishTelemetry()
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(os.Stderr, "dmpsim: profiling: %v\n", err)
	}
	if runErr != nil {
		fatal("%v\npartial stats: %v", runErr, st)
	}
	printStats(st)
	if *mergeSt {
		fmt.Print(mergeStatsLine(st))
	}
	if st.WallSeconds > 0 {
		printHostThroughput(p, cfg.MaxInsts, float64(st.RetiredInsts)/st.WallSeconds)
	}
}

// benchName names the workload for telemetry: the benchmark if one was
// given, else the assembly file.
func benchName(bench, asm string) string {
	if bench != "" {
		return bench
	}
	return asm
}

// setSampling validates and applies the -sample* flags. Split out of
// main so the flag-rejection contract is testable.
func setSampling(cfg *core.Config, on bool, period, interval, warmup uint64, warmMode, manifest string) error {
	if !on {
		if period != 0 || interval != 0 || warmup != 0 || warmMode != "" || manifest != "" {
			return fmt.Errorf("-sample-period, -sample-interval, -sample-warmup, -warm-mode and -sample-manifest need -sample")
		}
		return nil
	}
	if interval != 0 && period != 0 && interval >= period {
		return fmt.Errorf("-sample-interval %d must be smaller than -sample-period %d", interval, period)
	}
	n := *cfg
	n.SampleMode = true
	n.SamplePeriod = period
	n.SampleInterval = interval
	n.SampleWarmup = warmup
	n.WarmMode = warmMode
	if err := n.Validate(); err != nil {
		return err // e.g. an unknown -warm-mode; leave cfg untouched
	}
	*cfg = n
	return nil
}

// printSampled renders the sampling-specific summary: what was measured,
// what was extrapolated, how tight the estimate is, and where the host
// time went (the breakdown is wall-clock dependent; everything else is
// deterministic).
func printSampled(r *sample.Result) {
	fmt.Printf("sampled run       %12d insts: prefix %d exact, %d intervals of ~%d (detailed %.1f%%), period %d, warmup %d, ramp %d\n",
		r.TotalInsts, r.PrefixRetired, r.K, r.IntervalLen,
		100*float64(r.DetailedRetired)/float64(r.TotalInsts), r.Period, r.Warmup, r.Ramp)
	fmt.Printf("IPC estimate      %12.3f ± %.3f (95%% CI over %d intervals; interval mean %.3f)\n",
		r.IPC, r.CI95, r.K, r.IPCMean)
	tm := r.Timing
	fmt.Printf("time breakdown    %12s prefix %.0f%%, warming %.0f%%, snapshot %.0f%%, detailed %.0f%%, extrapolate %.0f%% of %.3fs wall\n",
		"", pct(tm.PrefixSeconds, r.WallSeconds), pct(tm.WarmSeconds, r.WallSeconds),
		pct(tm.SnapshotSeconds, r.WallSeconds), pct(tm.DetailedSeconds, r.WallSeconds),
		pct(tm.ExtrapolateSeconds, r.WallSeconds), r.WallSeconds)
}

// pct is a safe percentage: 0 when the denominator is 0.
func pct(num, den float64) float64 {
	if den <= 0 {
		return 0
	}
	return 100 * num / den
}

// printHostThroughput reports how fast the simulation ran relative to the
// pure functional emulator over the same program — the fast-forward
// ceiling any sampled run approaches as its detailed fraction shrinks.
func printHostThroughput(p *prog.Program, maxInsts uint64, simRate float64) {
	emuRate, err := emuOnlyRate(p, maxInsts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpsim: emu-only timing: %v\n", err)
		return
	}
	slow := "n/a"
	if simRate > 0 && emuRate > 0 {
		slow = fmt.Sprintf("%.1fx", emuRate/simRate)
	}
	fmt.Printf("host throughput   %12.0f simulated uops/s vs %.0f emu-only (slowdown %s)\n",
		simRate, emuRate, slow)
}

// emuOnlyRate times one pure functional emulation of p and returns
// architectural instructions per host second.
func emuOnlyRate(p *prog.Program, maxInsts uint64) (float64, error) {
	e := emu.New(p)
	t0 := time.Now()
	if _, err := e.Run(maxInsts); err != nil {
		return 0, err
	}
	el := time.Since(t0).Seconds()
	if el <= 0 {
		return 0, nil
	}
	return float64(e.Count) / el, nil
}

// setCFMSource validates and applies the -cfm-source / -merge-table
// flags. Split out of main so the flag-rejection contract is testable.
func setCFMSource(cfg *core.Config, src string, table int) error {
	switch src {
	case "annotated", "dynamic", "hybrid":
	default:
		return fmt.Errorf("invalid -cfm-source %q (want annotated, dynamic or hybrid)", src)
	}
	if table < 0 {
		return fmt.Errorf("invalid -merge-table %d (must be non-negative)", table)
	}
	if table > 0 && src == "annotated" {
		return fmt.Errorf("-merge-table needs -cfm-source dynamic or hybrid")
	}
	cfg.CFMSource = src
	cfg.MergeTableSize = table
	return nil
}

// mergeStatsLine renders the -merge-stats summary.
func mergeStatsLine(s *core.Stats) string {
	return fmt.Sprintf("merge predictor   %12d hits, %d misses, %d trainings, %d evictions, %d learned-CFM episodes, %d merge mispredicts\n",
		s.MergeHits, s.MergeMisses, s.MergeTrainings, s.MergeEvictions,
		s.DynCFMEpisodes, s.MergeMispredicts)
}

func printStats(s *core.Stats) {
	fmt.Printf("cycles            %12d\n", s.Cycles)
	fmt.Printf("retired insts     %12d  (IPC %.3f)\n", s.RetiredInsts, s.IPC())
	fmt.Printf("branches          %12d  (%.2f%% mispredicted, %.2f MPKI)\n",
		s.RetiredBranches, 100*s.MispredictRate(), s.MPKI())
	fmt.Printf("pipeline flushes  %12d\n", s.Flushes)
	fmt.Printf("fetched insts     %12d  (%.1f%% wrong-path: %d ctrl-dep + %d ctrl-indep)\n",
		s.FetchedInsts, 100*s.WrongPathFrac(), s.FetchedWrongCD, s.FetchedWrongCI)
	fmt.Printf("executed          %12d  (+%d select-uops, +%d marker uops)\n",
		s.ExecutedInsts, s.ExecutedSelects, s.ExecutedMarkers)
	fmt.Printf("retired FALSE     %12d\n", s.RetiredFalse)
	if s.Episodes > 0 {
		fmt.Printf("dpred episodes    %12d  exits: c1=%d c2=%d c3=%d c4=%d c5=%d c6=%d squashed=%d\n",
			s.Episodes, s.ExitCases[1], s.ExitCases[2], s.ExitCases[3],
			s.ExitCases[4], s.ExitCases[5], s.ExitCases[6], s.ExitCases[0])
		fmt.Printf("conversions       %12d early-exit, %d multiple-diverge\n", s.EarlyExits, s.MDBConversions)
	}
	fmt.Printf("halted            %12v\n", s.HaltRetired)
	fmt.Printf("sim throughput    %12.0f cycles/s, %.0f retired uops/s (%.2fs wall, %d uops created)\n",
		s.SimCyclesPerSec(), s.RetiredUopsPerSec(), s.WallSeconds, s.FetchedUops)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dmpsim: "+format+"\n", args...)
	os.Exit(1)
}
