// Command dmprofile runs the compiler-side profiling pass (Section 3.2 of
// the paper) on a benchmark or assembly file and prints the resulting
// diverge-branch / CFM-point table.
//
// Usage:
//
//	dmprofile -bench parser
//	dmprofile -asm prog.s -postdom
package main

import (
	"flag"
	"fmt"
	"os"

	"dmp/internal/profile"
	"dmp/internal/prog"
	"dmp/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark name")
		asm     = flag.String("asm", "", "assembly file")
		scale   = flag.Int("scale", 3, "workload scale")
		postdom = flag.Bool("postdom", false, "use immediate post-dominator CFM selection (ablation)")
		loops   = flag.Bool("loops", false, "mark diverge loop branches too (2.7.4)")
		share   = flag.Float64("share", 0.001, "minimum misprediction share for a candidate")
		frac    = flag.Float64("frac", 0.2, "minimum reconvergence fraction for a CFM point")
		dist    = flag.Int("dist", 120, "maximum dynamic distance to a CFM point")
		dis     = flag.Bool("dis", false, "also print the annotated disassembly")
	)
	flag.Parse()

	var p *prog.Program
	switch {
	case *asm != "":
		src, err := os.ReadFile(*asm)
		if err != nil {
			fatal("%v", err)
		}
		p, err = prog.Assemble(string(src))
		if err != nil {
			fatal("%v", err)
		}
	case *bench != "":
		w, err := workload.ByName(*bench)
		if err != nil {
			fatal("%v", err)
		}
		p = w.Build(workload.BuildConfig{Seed: workload.TrainSeed, Scale: *scale})
	default:
		fatal("need -bench or -asm")
	}

	opts := profile.DefaultOptions()
	opts.UsePostDom = *postdom
	opts.IncludeLoops = *loops
	opts.MispredictShare = *share
	opts.ReconvergeFrac = *frac
	opts.MaxDist = *dist

	rep, err := profile.Run(p, opts)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Print(rep.String())
	if *dis {
		fmt.Println()
		fmt.Print(p.Disassemble())
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dmprofile: "+format+"\n", args...)
	os.Exit(1)
}
