// Command dmptrace records branch traces from the workloads and replays
// them through the direction predictors and confidence estimators —
// trace-driven methodology for studying the structures that feed the
// diverge-merge processor without running the timing simulator.
//
// Usage:
//
//	dmptrace -bench twolf -record twolf.btr        # record a trace
//	dmptrace -replay twolf.btr                     # evaluate all predictors
//	dmptrace -bench twolf                          # record + evaluate in memory
//	dmptrace -all                                  # predictor table, all benchmarks
package main

import (
	"flag"
	"fmt"
	"os"

	"dmp/internal/bpred"
	"dmp/internal/conf"
	"dmp/internal/trace"
	"dmp/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "", "benchmark to trace")
		scale  = flag.Int("scale", 3, "workload scale")
		record = flag.String("record", "", "write the trace to this file")
		replay = flag.String("replay", "", "evaluate predictors on a recorded trace file")
		all    = flag.Bool("all", false, "evaluate every predictor on every benchmark")
	)
	flag.Parse()

	switch {
	case *all:
		evalAll(*scale)
	case *replay != "":
		f, err := os.Open(*replay)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fatal("%v", err)
		}
		evalOne(*replay, tr)
	case *bench != "":
		tr := collect(*bench, *scale)
		if *record != "" {
			f, err := os.Create(*record)
			if err != nil {
				fatal("%v", err)
			}
			if err := tr.Write(f); err != nil {
				fatal("%v", err)
			}
			if err := f.Close(); err != nil {
				fatal("%v", err)
			}
			fmt.Printf("wrote %d branch records (%d insts) to %s\n", len(tr.Records), tr.Insts, *record)
			return
		}
		evalOne(*bench, tr)
	default:
		fatal("need -bench, -replay or -all")
	}
}

func collect(bench string, scale int) *trace.Trace {
	w, err := workload.ByName(bench)
	if err != nil {
		fatal("%v", err)
	}
	p := w.Build(workload.BuildConfig{Seed: workload.RefSeed, Scale: scale})
	tr, err := trace.Collect(p, 0)
	if err != nil {
		fatal("%v", err)
	}
	return tr
}

func predictors() map[string]func() bpred.DirPredictor {
	return map[string]func() bpred.DirPredictor{
		"perceptron": func() bpred.DirPredictor { return bpred.NewPerceptron(bpred.DefaultPerceptronConfig()) },
		"gshare":     func() bpred.DirPredictor { return bpred.NewGShare(16, 14) },
		"bimodal":    func() bpred.DirPredictor { return bpred.NewBimodal(16) },
		"hybrid":     func() bpred.DirPredictor { return bpred.NewHybrid(14, 12) },
	}
}

func evalOne(name string, tr *trace.Trace) {
	fmt.Printf("%s: %d branches over %d instructions\n", name, len(tr.Records), tr.Insts)
	fmt.Printf("%-11s %10s %9s %7s\n", "predictor", "mispredict", "accuracy", "mpki")
	for _, pn := range []string{"perceptron", "gshare", "bimodal", "hybrid"} {
		r := trace.Evaluate(tr, predictors()[pn]())
		fmt.Printf("%-11s %10d %8.2f%% %7.2f\n", r.Predictor, r.Mispredicts, 100*r.Accuracy(), r.MPKI)
	}
	cr := trace.EvaluateConfidence(tr,
		bpred.NewPerceptron(bpred.DefaultPerceptronConfig()),
		conf.NewJRS(conf.DefaultJRSConfig()))
	fmt.Printf("JRS confidence: coverage %.1f%% of mispredictions, %.1f%% of low flags were real\n",
		100*cr.Coverage(), 100*cr.PVN())
}

func evalAll(scale int) {
	fmt.Printf("%-9s %9s | %-10s %-10s %-10s %-10s\n",
		"bench", "branches", "perceptron", "gshare", "bimodal", "hybrid")
	for _, w := range workload.All() {
		p := w.Build(workload.BuildConfig{Seed: workload.RefSeed, Scale: scale})
		tr, err := trace.Collect(p, 0)
		if err != nil {
			fatal("%s: %v", w.Name, err)
		}
		fmt.Printf("%-9s %9d |", w.Name, len(tr.Records))
		for _, pn := range []string{"perceptron", "gshare", "bimodal", "hybrid"} {
			r := trace.Evaluate(tr, predictors()[pn]())
			fmt.Printf(" %9.2f%%", 100*r.Accuracy())
		}
		fmt.Println()
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dmptrace: "+format+"\n", args...)
	os.Exit(1)
}
