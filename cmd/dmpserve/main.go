// Command dmpserve is the simulation-as-a-service daemon: a
// long-running HTTP/JSON server that runs simulations and experiments
// on demand, deduplicates identical in-flight requests through the
// process-wide result cache (internal/sched), and persists every
// computed result in a content-addressed on-disk store (internal/store)
// so that repeated requests — and future daemon processes over the same
// store directory — answer without simulating.
//
// Usage:
//
//	dmpserve -store /var/lib/dmp -listen :8080
//
// then, from a client:
//
//	dmpexp -remote http://localhost:8080 -scale 1 all
//	curl -s localhost:8080/v1/runs -d '{"bench":"mcf","mode":"enhanced"}'
//	curl -s localhost:8080/metrics
//
// POST /v1/runs and /v1/experiments accept ?wait=1 to block until the
// result is ready; otherwise they answer 202 with a run id to poll at
// GET /v1/runs/{id} or stream at GET /v1/runs/{id}/events (server-sent
// events off the host telemetry feed). When the admission queues are
// full the daemon sheds load with 429 and a Retry-After header.
//
// -telemetry-out DIR records the host telemetry artifacts (spans.json,
// events.jsonl, metrics.json/.prom) on shutdown, in the same format
// dmpexp -telemetry-out writes and dmpobs -telemetry validates. Without
// it the daemon still runs an in-memory telemetry set: the progress
// feed drives the SSE endpoint and the metrics registry drives
// /metrics.
//
// SIGINT/SIGTERM shut down gracefully: stop admitting (new POSTs get
// 429), drain accepted requests, flush telemetry, exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmp/internal/sched"
	"dmp/internal/serve"
	"dmp/internal/store"
	"dmp/internal/telemetry"
)

func main() {
	var (
		listen   = flag.String("listen", ":8080", "address to serve HTTP on")
		storeDir = flag.String("store", "", "persistent result store directory (empty = in-memory only)")
		par      = flag.Int("parallel", 0, "simulation worker cap (default NumCPU)")
		maxReq   = flag.Int("max-requests", 0, "requests executing concurrently (default 2)")
		queuePC  = flag.Int("queue-per-client", 0, "queued requests allowed per client before shedding (default 8)")
		queueTot = flag.Int("queue-total", 0, "queued requests allowed in total before shedding (default 64)")

		telemetryOut = flag.String("telemetry-out", "", "record telemetry artifacts (spans.json, events.jsonl, metrics.json/.prom) in this directory on shutdown")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "dmpserve: "+format+"\n", args...)
		os.Exit(1)
	}

	// The daemon always runs with an attached telemetry set: the feed is
	// what the SSE endpoint streams and EmitMetrics checkpoints come for
	// free with it. -telemetry-out additionally persists the artifacts.
	var (
		tel *telemetry.Set
		err error
	)
	if *telemetryOut != "" {
		tel, err = telemetry.OpenDir(*telemetryOut)
		if err != nil {
			fail("telemetry: %v", err)
		}
	} else {
		tel = telemetry.New(telemetry.Options{})
	}
	telemetry.Enable(tel)
	root := tel.Tracer().Begin("dmpserve", "serve")
	tel.Feed().Emit(telemetry.Event{Kind: "run-start", Name: "dmpserve", Msg: "listen " + *listen})

	cfg := serve.Config{
		Parallel: *par,
		Admit: sched.AdmitOptions{
			MaxConcurrent:      *maxReq,
			MaxQueuedPerClient: *queuePC,
			MaxQueuedTotal:     *queueTot,
		},
		Span: root,
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir)
		if err != nil {
			fail("store: %v", err)
		}
		cfg.Store = st
		fmt.Fprintf(os.Stderr, "dmpserve: store %s (%d results)\n", st.Dir(), st.Len())
	}
	srv := serve.New(cfg)

	httpSrv := &http.Server{Addr: *listen, Handler: srv}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dmpserve: listening on %s\n", *listen)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "dmpserve: shutting down")
	case err := <-errCh:
		fail("%v", err)
	}

	// Graceful drain: refuse new requests, let in-flight HTTP exchanges
	// (including waiting clients) finish, then release the admitter.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dmpserve: shutdown: %v\n", err)
	}
	srv.Close()

	tel.Feed().Emit(telemetry.Event{Kind: "run-end"})
	root.End()
	snap, terr := tel.Close()
	telemetry.Enable(nil)
	if terr != nil {
		fmt.Fprintf(os.Stderr, "dmpserve: telemetry: %v\n", terr)
	}
	if *telemetryOut != "" {
		if err := telemetry.WriteMetricsDir(*telemetryOut, snap); err != nil {
			fmt.Fprintf(os.Stderr, "dmpserve: telemetry: %v\n", err)
		}
	}
}
