// Command dmplint statically checks DMP programs and their
// diverge-branch annotations: code-image legality (opcodes, targets,
// fallthrough off the end), reachability, call/return discipline,
// def-before-use dataflow, and the CFM legality rules the profiler's
// heuristics are supposed to guarantee (every CFM reachable on both
// paths within the distance bound, class and loop flags consistent with
// the CFG, regions properly nested).
//
// Usage:
//
//	dmplint all                 # every benchmark, post-profile annotations
//	dmplint -scale 1 mcf twolf  # a subset at another scale
//	dmplint -loops all          # with loop diverge branches marked (2.7.4)
//	dmplint -asm prog.s         # an assembly file (annotations via -profile)
//
// Exit status: 0 when no Error-severity diagnostics were found (with
// -werror: no diagnostics at all), 1 otherwise, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"dmp/internal/exp"
	"dmp/internal/lint"
	"dmp/internal/profile"
	"dmp/internal/prog"
	"dmp/internal/workload"
)

func main() {
	var (
		scale   = flag.Int("scale", 3, "workload scale factor")
		loops   = flag.Bool("loops", false, "mark loop diverge branches too (Section 2.7.4)")
		strict  = flag.Bool("strict", false, "enable the path-sensitive maybe-undef dataflow check")
		maxDist = flag.Int("maxdist", 0, "CFM distance bound (0 = profiler default)")
		werror  = flag.Bool("werror", false, "treat warnings as errors for the exit status")
		asm     = flag.String("asm", "", "lint an assembly file instead of benchmarks")
		doProf  = flag.Bool("profile", false, "with -asm: run the profiler before linting annotations")
	)
	flag.Parse()

	opts := lint.Options{MaxDist: *maxDist, StrictUninit: *strict}

	var total lint.Diags
	switch {
	case *asm != "":
		src, err := os.ReadFile(*asm)
		if err != nil {
			fatal("%v", err)
		}
		p, err := prog.Assemble(string(src))
		if err != nil {
			fatal("%v", err)
		}
		if *doProf {
			popts := profile.DefaultOptions()
			popts.IncludeLoops = *loops
			if _, err := profile.Run(p, popts); err != nil {
				fatal("profile: %v", err)
			}
		}
		total = report(*asm, lint.Check(p, opts))
	default:
		names := flag.Args()
		if len(names) == 0 {
			fmt.Fprintln(os.Stderr, "dmplint: specify benchmark names or 'all' (or -asm file)")
			os.Exit(2)
		}
		if len(names) == 1 && names[0] == "all" {
			names = names[:0]
			for _, w := range workload.All() {
				names = append(names, w.Name)
			}
		}
		annotated := exp.Annotated
		if *loops {
			annotated = exp.AnnotatedLoops
		}
		for _, name := range names {
			p, err := annotated(name, *scale)
			if err != nil {
				fatal("%s: %v", name, err)
			}
			total = append(total, report(name, lint.Check(p, opts))...)
		}
	}

	if len(total) == 0 {
		fmt.Println("dmplint: clean")
		return
	}
	errs := len(total.Errors())
	fmt.Fprintf(os.Stderr, "dmplint: %d finding(s), %d error(s)\n", len(total), errs)
	if errs > 0 || *werror {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dmplint: %d warning(s) suppressed (use -werror to fail on them)\n",
		len(total)-errs)
}

// report prints every diagnostic prefixed with the program name and
// returns them for aggregation.
func report(name string, ds lint.Diags) lint.Diags {
	for _, d := range ds {
		fmt.Printf("%s: %s\n", name, d)
	}
	return ds
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dmplint: "+format+"\n", args...)
	os.Exit(1)
}
