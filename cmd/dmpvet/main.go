// Command dmpvet runs the repo-specific static analyzers over the whole
// module: frozenstats (mutation of shared cached stats), nondeterminism
// (wall clock, math/rand, order-sensitive map iteration in the
// simulator) and hotalloc (sorting / per-cycle allocation in the
// pipeline loop). It exits nonzero when any analyzer reports a finding.
//
// Usage:
//
//	dmpvet [-root dir] [-list]
//
// Findings can be waived in source with:
//
//	//dmp:allow <analyzer> -- reason
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dmp/internal/vet"
)

func main() {
	root := flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range vet.DefaultAnalyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	r := *root
	if r == "" {
		var err error
		r, err = vet.FindModuleRoot(".")
		if err != nil {
			fatal(err)
		}
	}
	diags, err := vet.Check(r, vet.DefaultAnalyzers())
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		pos := d.Pos
		if rel, err := filepath.Rel(r, pos.Filename); err == nil {
			pos.Filename = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Msg)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dmpvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dmpvet:", err)
	os.Exit(1)
}
