package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"dmp/internal/exp"
	"dmp/internal/serve"
)

// runRemote sends the experiment request to a dmpserve daemon instead
// of simulating locally, printing the returned tables in requested
// order so stdout is byte-identical to a local run. The daemon's
// result-cache delta replaces the local cache summary on stderr
// (adding the store-hit count a local run cannot have). Returns the
// process exit code.
func runRemote(base string, ids []string, opts exp.Options) int {
	start := time.Now()
	body, err := json.Marshal(serve.ExperimentsRequest{
		IDs:        ids,
		Benchmarks: opts.Benchmarks,
		Scale:      opts.Scale,
		Check:      &opts.Check,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpexp: remote: %v\n", err)
		return 1
	}
	url := strings.TrimSuffix(base, "/") + "/v1/experiments?wait=1"
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpexp: remote: %v\n", err)
		return 1
	}
	req.Header.Set("Content-Type", "application/json")
	host, _ := os.Hostname()
	req.Header.Set("X-DMP-Client", "dmpexp@"+host)
	// Experiments can run for minutes; rely on the server, not a client
	// timeout, to bound the wait.
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpexp: remote: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		fmt.Fprintf(os.Stderr, "dmpexp: remote: server overloaded, retry after %ss\n",
			resp.Header.Get("Retry-After"))
		return 1
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fmt.Fprintf(os.Stderr, "dmpexp: remote: %s: %s\n", resp.Status, strings.TrimSpace(string(msg)))
		return 1
	}
	var st serve.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		fmt.Fprintf(os.Stderr, "dmpexp: remote: decode response: %v\n", err)
		return 1
	}

	failed := 0
	for _, tb := range st.Tables {
		if tb.Error != "" {
			failed++
			fmt.Fprintf(os.Stderr, "dmpexp: %s: %s\n", tb.ID, tb.Error)
			continue
		}
		fmt.Print(tb.Text)
		fmt.Println()
	}
	var reused, storeHits, simulated uint64
	if st.Counts != nil {
		reused, storeHits, simulated = st.Counts.Reused, st.Counts.StoreHits, st.Counts.Simulated
	}
	fmt.Fprintf(os.Stderr, "total %.1fs; result cache: %d simulations, %d store hits, %d reused\n",
		time.Since(start).Seconds(), simulated, storeHits, reused)
	if failed > 0 || st.State != "done" {
		if st.State != "done" && failed == 0 {
			fmt.Fprintf(os.Stderr, "dmpexp: remote: run %s: %s\n", st.State, st.Error)
		}
		return 1
	}
	return 0
}
