// Command dmpexp regenerates the paper's tables and figures.
//
// Usage:
//
//	dmpexp -scale 3 all          # every experiment, in paper order
//	dmpexp fig7 fig9             # specific experiments
//	dmpexp -bench mcf,twolf fig8 # restrict the suite
//
// Experiment ids: table2 table3 fig1 fig6 fig7 fig8 fig9 fig10 fig11
// fig12 fig13a fig13b dualpath loopdiverge mergepred sampling (the
// authoritative list is exp.IDs(), which the usage error prints).
//
// The sampling experiment validates sampled simulation against exact
// golden runs. -sample-json writes its machine-readable report (per-bench
// IPC error, CI coverage, host speedup) to a file; -sample-gate N makes
// the process fail unless every benchmark's |IPC error| is at most N
// percent and its 95% confidence interval covers the exact IPC — the CI
// accuracy gate. -sample-period/-sample-interval/-sample-warmup/
// -sample-warm-mode override the sampling parameters; with none of them
// set, each benchmark runs at its own validated operating point (see
// internal/exp benchPoints). All of them require the sampling experiment
// to be among the requested ids.
//
// All requested experiments generate concurrently: the process-wide
// result cache in internal/exp simulates each unique (benchmark, config,
// scale, check) pair exactly once, and a global worker pool (-parallel,
// default NumCPU) bounds the simulations in flight across every
// experiment. Tables print to stdout in the requested order regardless of
// completion order; per-experiment timing and the cache hit/miss summary
// go to stderr so stdout stays byte-stable for golden diffs.
//
// -remote URL sends the request to a dmpserve daemon instead of
// simulating locally: tables stream back byte-identical to a local run
// (golden diffs hold either way), and the stderr summary reports the
// daemon's result-cache delta — including store hits, simulations the
// daemon's persistent store answered from disk. Local-only flags
// (-lint, -sample-*, -telemetry*) are rejected with -remote.
//
// -telemetry attaches the host-side telemetry layer (internal/telemetry):
// a live single-line progress renderer on stderr (cache hits/misses,
// experiments completed) replaces the per-experiment timing lines, and
// scheduler/result-cache/sampling metrics are collected process-wide.
// -telemetry-out DIR (implies -telemetry) additionally records the
// artifacts: spans.json (Chrome trace of suite → experiment → simulation
// → sample-pipeline stages, Perfetto-loadable), events.jsonl (the
// structured progress feed), and metrics.json/metrics.prom (final metric
// snapshot). Validate and summarize with dmpobs -telemetry DIR. Attached
// telemetry never perturbs results — stdout stays golden-identical.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"dmp/internal/exp"
	"dmp/internal/lint"
	"dmp/internal/obs"
	"dmp/internal/prog"
	"dmp/internal/telemetry"
	"dmp/internal/workload"
)

// annotated dispatches to the plain or loop-marking annotation builder.
func annotated(bench string, scale int, loops bool) (*prog.Program, error) {
	if loops {
		return exp.AnnotatedLoops(bench, scale)
	}
	return exp.Annotated(bench, scale)
}

func main() {
	var (
		scale   = flag.Int("scale", 3, "workload scale factor")
		bench   = flag.String("bench", "", "comma-separated benchmark subset (default: all 15)")
		nocheck = flag.Bool("nocheck", false, "disable the golden-model checker (faster)")
		par     = flag.Int("parallel", 0, "simulation worker cap, shared by all experiments (default NumCPU)")
		doLint  = flag.Bool("lint", false, "lint every benchmark program and annotation set before running")
		remote  = flag.String("remote", "", "run on a dmpserve daemon at this base URL instead of locally")

		sampleJSON = flag.String("sample-json", "", "write the sampling experiment's report (JSON) to this file")
		sampleGate = flag.Float64("sample-gate", 0, "fail unless every sampled benchmark has |IPC err%| <= this and CI coverage (0 = off)")
		samplePer  = flag.Uint64("sample-period", 0, "sampling experiment: instructions per period (0 = default)")
		sampleIvl  = flag.Uint64("sample-interval", 0, "sampling experiment: retired instructions per detailed interval (0 = default)")
		sampleWarm = flag.Uint64("sample-warmup", 0, "sampling experiment: extra per-interval warmup instructions")
		sampleWM   = flag.String("sample-warm-mode", "", "sampling experiment: warm mode (full or caches; default per-benchmark)")

		cpuprofile = flag.String("cpuprofile", "", "write a host CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a host heap profile to this file at exit")
		exectrace  = flag.String("trace", "", "write a host runtime execution trace to this file")

		telemetryOn  = flag.Bool("telemetry", false, "attach host-side telemetry: live progress line, metrics, spans")
		telemetryOut = flag.String("telemetry-out", "", "record telemetry artifacts (spans.json, events.jsonl, metrics.json/.prom) in this directory; implies -telemetry")
	)
	flag.Parse()

	stopProfiles, err := obs.StartHostProfiles(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dmpexp: profiling: %v\n", err)
		os.Exit(1) // nothing started; nothing to stop
	}
	// os.Exit skips deferred calls, so every exit path below goes
	// through this instead of a bare os.Exit.
	exit := func(code int) {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "dmpexp: profiling: %v\n", err)
		}
		os.Exit(code)
	}

	opts := exp.DefaultOptions()
	opts.Scale = *scale
	opts.Check = !*nocheck
	opts.Parallel = *par
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}
	opts.SamplePeriod = *samplePer
	opts.SampleInterval = *sampleIvl
	opts.SampleWarmup = *sampleWarm
	opts.SampleWarmMode = *sampleWM

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "dmpexp: specify experiment ids or 'all'; known:", strings.Join(exp.IDs(), " "))
		exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = exp.IDs()
	}
	for _, id := range ids {
		if exp.All[id] == nil {
			fmt.Fprintf(os.Stderr, "dmpexp: unknown experiment %q (known: %s)\n", id, strings.Join(exp.IDs(), " "))
			exit(2)
		}
	}
	if *remote != "" {
		// Everything below runs simulations (or inspects local telemetry)
		// on this host; the remote path delegates all of it to the daemon.
		if *doLint || *sampleJSON != "" || *sampleGate != 0 || *samplePer != 0 || *sampleIvl != 0 ||
			*sampleWarm != 0 || *sampleWM != "" || *telemetryOn || *telemetryOut != "" {
			fmt.Fprintln(os.Stderr, "dmpexp: -lint, -sample-* and -telemetry* are local-only; drop them with -remote")
			exit(2)
		}
		exit(runRemote(*remote, ids, opts))
	}
	wantSampling := false
	for _, id := range ids {
		wantSampling = wantSampling || id == "sampling"
	}
	if !wantSampling && (*sampleJSON != "" || *sampleGate != 0 || *samplePer != 0 || *sampleIvl != 0 || *sampleWarm != 0 || *sampleWM != "") {
		fmt.Fprintln(os.Stderr, "dmpexp: -sample-* flags need the sampling experiment among the requested ids")
		exit(2)
	}

	// Pre-flight lint gate: every benchmark's annotated program (both
	// with and without loop diverge marking, since the loop-diverge
	// experiments use the latter) must be free of Error-severity
	// findings before any simulation starts.
	if *doLint {
		bad, warns := 0, 0
		benches := opts.Benchmarks
		if len(benches) == 0 {
			benches = workload.Names()
		}
		for _, b := range benches {
			for _, loops := range []bool{false, true} {
				p, err := annotated(b, opts.Scale, loops)
				if err != nil {
					fmt.Fprintf(os.Stderr, "dmpexp: lint %s: %v\n", b, err)
					exit(1)
				}
				for _, d := range lint.Check(p, lint.Options{}) {
					fmt.Fprintf(os.Stderr, "dmpexp: lint %s (loops=%v): %s\n", b, loops, d)
					if d.Sev == lint.Error {
						bad++
					} else {
						warns++
					}
				}
			}
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "dmpexp: lint: %d error(s), %d warning(s)\n", bad, warns)
			exit(1)
		}
		if warns > 0 {
			fmt.Fprintf(os.Stderr, "dmpexp: lint: clean (%d warning(s) suppressed)\n", warns)
		} else {
			fmt.Fprintln(os.Stderr, "dmpexp: lint: clean")
		}
	}

	// Telemetry attach: the Set is process-global (Enable), so the result
	// cache, worker pool, sampling pipeline and differential harness all
	// report into it without plumbing. With it on, the structured feed
	// (and its live progress line) replaces the ad-hoc per-experiment
	// stderr timing lines; stdout is untouched either way.
	var (
		tel      *telemetry.Set
		progress *telemetry.Progress
		rootSpan *telemetry.Span
	)
	if *telemetryOut != "" {
		*telemetryOn = true
	}
	if *telemetryOn {
		if *telemetryOut != "" {
			var terr error
			tel, terr = telemetry.OpenDir(*telemetryOut)
			if terr != nil {
				fmt.Fprintf(os.Stderr, "dmpexp: telemetry: %v\n", terr)
				exit(1)
			}
		} else {
			tel = telemetry.New(telemetry.Options{})
		}
		progress = telemetry.NewProgress(os.Stderr, telemetry.IsTerminal(os.Stderr))
		tel.Feed().Subscribe(progress.Event)
		telemetry.Enable(tel)
		rootSpan = tel.Tracer().Begin("dmpexp", "exp")
		tel.Feed().Emit(telemetry.Event{Kind: "run-start", Name: "dmpexp",
			Msg: fmt.Sprintf("scale %d, %s", opts.Scale, strings.Join(ids, " "))})
	}

	type result struct {
		table   *exp.Table
		err     error
		elapsed time.Duration
		done    chan struct{}
	}
	results := make([]*result, len(ids))
	start := time.Now()
	// The sampling experiment runs through SamplingReport when a -sample-*
	// flag needs the machine-readable report; the channel close publishes
	// sampleRep to the presentation loop below.
	var sampleRep *exp.SampleReport
	needRep := *sampleJSON != "" || *sampleGate != 0
	for i, id := range ids {
		r := &result{done: make(chan struct{})}
		results[i] = r
		go func(id string, r *result) {
			defer close(r.done)
			t0 := time.Now()
			o := opts
			var sp *telemetry.Span
			if tel != nil {
				sp = rootSpan.ChildAsync(id, "exp")
				o.Span = sp
				tel.Feed().Emit(telemetry.Event{Kind: "experiment", Name: id, Msg: "start"})
			}
			if id == "sampling" && needRep {
				r.table, sampleRep, r.err = exp.SamplingReport(o)
			} else {
				r.table, r.err = exp.All[id](o)
			}
			r.elapsed = time.Since(t0)
			sp.End()
			if tel != nil {
				tel.Feed().Emit(telemetry.Event{Kind: "experiment", Name: id, Msg: "done", V: r.elapsed.Seconds()})
			}
		}(id, r)
	}

	// Present in the requested order, streaming each table as soon as it
	// (and everything before it) is ready. A failing experiment does not
	// abort the rest: every table that succeeded still prints, and the
	// joined errors decide the exit status at the end.
	var failed []error
	for i, id := range ids {
		r := results[i]
		<-r.done
		if r.err != nil {
			failed = append(failed, fmt.Errorf("%s: %w", id, r.err))
			fmt.Fprintf(os.Stderr, "dmpexp: %s: %v\n", id, r.err)
			continue
		}
		fmt.Print(r.table.String())
		fmt.Println()
		if tel != nil {
			// The feed (and its progress line) carries what the ad-hoc
			// stderr timing line used to; a metrics delta per presented
			// experiment gives the event stream checkpoints dmpobs can sum.
			tel.Feed().Emit(telemetry.Event{Kind: "progress",
				N: uint64(i + 1), V: float64(len(ids)), Msg: id})
			tel.EmitMetrics()
		} else {
			fmt.Fprintf(os.Stderr, "(%s in %.1fs)\n", id, r.elapsed.Seconds())
		}
	}
	if tel != nil {
		tel.Feed().Emit(telemetry.Event{Kind: "run-end", V: time.Since(start).Seconds()})
		rootSpan.End()
		snap, terr := tel.Close()
		progress.Finish()
		telemetry.Enable(nil)
		if terr != nil {
			fmt.Fprintf(os.Stderr, "dmpexp: telemetry: %v\n", terr)
		}
		if *telemetryOut != "" {
			if err := telemetry.WriteMetricsDir(*telemetryOut, snap); err != nil {
				fmt.Fprintf(os.Stderr, "dmpexp: telemetry: %v\n", err)
			}
		}
	}
	hits, misses := exp.SimCounts()
	fmt.Fprintf(os.Stderr, "total %.1fs; result cache: %d simulations, %d reused\n",
		time.Since(start).Seconds(), misses, hits)
	if sampleRep != nil {
		if *sampleJSON != "" {
			if err := writeSampleJSON(*sampleJSON, sampleRep); err != nil {
				fmt.Fprintf(os.Stderr, "dmpexp: %v\n", err)
				failed = append(failed, err)
			}
		}
		if *sampleGate != 0 {
			if err := checkSampleGate(sampleRep, *sampleGate); err != nil {
				fmt.Fprintf(os.Stderr, "dmpexp: sample gate: %v\n", err)
				failed = append(failed, err)
			} else {
				fmt.Fprintf(os.Stderr, "dmpexp: sample gate: every benchmark within %.2f%% with CI coverage\n", *sampleGate)
			}
		}
	}
	if err := errors.Join(failed...); err != nil {
		exit(1)
	}
	exit(0)
}

// writeSampleJSON records the sampling report (BENCH_sample.json).
func writeSampleJSON(path string, rep *exp.SampleReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// checkSampleGate is the CI accuracy gate: every benchmark must land
// within gatePct of its exact IPC, its 95% confidence interval must cover
// the exact value, and it must have at least two measured intervals (one
// interval has no spread estimate, so coverage would be vacuous).
func checkSampleGate(rep *exp.SampleReport, gatePct float64) error {
	var bad []string
	for _, b := range rep.Benches {
		switch {
		case math.Abs(b.ErrPct) > gatePct:
			bad = append(bad, fmt.Sprintf("%s: |err| %.2f%% > %.2f%%", b.Bench, math.Abs(b.ErrPct), gatePct))
		case !b.Covered:
			bad = append(bad, fmt.Sprintf("%s: 95%% CI misses the exact IPC", b.Bench))
		case b.K < 2:
			bad = append(bad, fmt.Sprintf("%s: only %d measured interval(s)", b.Bench, b.K))
		}
	}
	if len(bad) > 0 {
		return errors.New(strings.Join(bad, "; "))
	}
	return nil
}
