// Command dmpexp regenerates the paper's tables and figures.
//
// Usage:
//
//	dmpexp -scale 3 all          # every experiment, in paper order
//	dmpexp fig7 fig9             # specific experiments
//	dmpexp -bench mcf,twolf fig8 # restrict the suite
//
// Experiment ids: table2 table3 fig1 fig6 fig7 fig8 fig9 fig10 fig11
// fig12 fig13a fig13b dualpath.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dmp/internal/exp"
)

func main() {
	var (
		scale   = flag.Int("scale", 3, "workload scale factor")
		bench   = flag.String("bench", "", "comma-separated benchmark subset (default: all 15)")
		nocheck = flag.Bool("nocheck", false, "disable the golden-model checker (faster)")
		par     = flag.Int("parallel", 0, "worker goroutines (default NumCPU)")
	)
	flag.Parse()

	opts := exp.DefaultOptions()
	opts.Scale = *scale
	opts.Check = !*nocheck
	opts.Parallel = *par
	if *bench != "" {
		opts.Benchmarks = strings.Split(*bench, ",")
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "dmpexp: specify experiment ids or 'all'; known:", strings.Join(exp.IDs(), " "))
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = exp.IDs()
	}
	for _, id := range ids {
		gen := exp.All[id]
		if gen == nil {
			fmt.Fprintf(os.Stderr, "dmpexp: unknown experiment %q (known: %s)\n", id, strings.Join(exp.IDs(), " "))
			os.Exit(2)
		}
		start := time.Now()
		t, err := gen(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dmpexp: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(t.String())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
